//! Raid combat: aggro management vs exact nearest-enemy targeting.
//!
//! The paper: "'aggro management' is the technique that World of Warcraft
//! uses to target opponents and process combat. It assigns abstract roles
//! to the participants, which allows the game to handle combat without
//! exact spatial fidelity."
//!
//! A 10-player raid (2 tanks, 2 healers, 6 dps) fights a boss for 120
//! ticks. Players jitter around the arena every tick — the positional
//! noise real clients produce. The same fight runs under both targeting
//! policies; the summary shows why every MMO ships the aggro table: the
//! boss's target is *stable* (it stays on the tank), while exact
//! nearest-enemy targeting flaps to whoever's movement noise put them
//! closest, shredding the healers.
//!
//! ```text
//! cargo run --example raid_combat
//! ```

use gamedb::content::ValueType;
use gamedb::core::{EntityId, World};
use gamedb::spatial::Vec2;
use gamedb::sync::{AggroTargeting, NearestTargeting, Role, Targeting};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TICKS: usize = 120;
const BOSS_DMG: f32 = 22.0;
const TANK_TAUNT_EVERY: usize = 25;

struct Raider {
    id: EntityId,
    role: Role,
}

/// The two targeting policies under test. The aggro policy consumes the
/// threat stream (damage events, taunts, decay); nearest ignores it.
enum Policy {
    Nearest(NearestTargeting),
    Aggro(AggroTargeting),
}

impl Policy {
    fn choose(&mut self, world: &World, mob: EntityId, cands: &[EntityId]) -> Option<EntityId> {
        match self {
            Policy::Nearest(p) => p.choose(world, mob, cands),
            Policy::Aggro(p) => p.choose(world, mob, cands),
        }
    }

    fn feed_damage(&mut self, mob: EntityId, attacker: EntityId, role: Role, dmg: f64) {
        if let Policy::Aggro(p) = self {
            p.record_damage(mob, attacker, role, dmg);
        }
    }

    fn feed_taunt(&mut self, mob: EntityId, tank: EntityId) {
        if let Policy::Aggro(p) = self {
            p.table_mut(mob).taunt(tank, 3);
        }
    }

    fn end_tick(&mut self) {
        if let Policy::Aggro(p) = self {
            p.tick();
        }
    }
}

fn build_raid(world: &mut World) -> (EntityId, Vec<Raider>) {
    for (name, ty) in [("hp", ValueType::Float), ("dmg", ValueType::Float)] {
        world.define_component(name, ty).unwrap();
    }
    let boss = world.spawn_at(Vec2::new(0.0, 0.0));
    world.set_f32(boss, "hp", 15_000.0).unwrap();
    world.set_f32(boss, "dmg", BOSS_DMG).unwrap();

    // name, role, hp, output (healers' output is healing per tick)
    let roster: Vec<(Role, f32, f32)> = vec![
        (Role::Tank, 900.0, 62.0),
        (Role::Tank, 850.0, 58.0),
        (Role::Healer, 420.0, 55.0),
        (Role::Healer, 400.0, 50.0),
        (Role::Dps, 380.0, 95.0),
        (Role::Dps, 360.0, 110.0),
        (Role::Dps, 350.0, 105.0),
        (Role::Dps, 340.0, 120.0),
        (Role::Dps, 370.0, 90.0),
        (Role::Dps, 365.0, 98.0),
    ];
    let mut raiders = Vec::new();
    for (i, (role, hp, dmg)) in roster.into_iter().enumerate() {
        let angle = i as f32 / 10.0 * std::f32::consts::TAU;
        // tanks stand in melee range; everyone else spreads out behind
        let dist = match role {
            Role::Tank => 2.0,
            _ => 6.0 + (i % 3) as f32 * 1.5,
        };
        let id = world.spawn_at(Vec2::new(angle.cos() * dist, angle.sin() * dist));
        world.set_f32(id, "hp", hp).unwrap();
        world.set_f32(id, "dmg", dmg).unwrap();
        raiders.push(Raider { id, role });
    }
    (boss, raiders)
}

#[derive(Default)]
struct FightOutcome {
    target_switches: usize,
    healer_deaths: usize,
    raid_deaths: usize,
    boss_hp_left: f32,
    tank_target_ticks: usize,
}

fn run_fight(mut policy: Policy, seed: u64) -> FightOutcome {
    let mut world = World::new();
    let (boss, raiders) = build_raid(&mut world);
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<EntityId> = raiders.iter().map(|r| r.id).collect();

    let mut last_target: Option<EntityId> = None;
    let mut out = FightOutcome::default();

    for tick in 0..TICKS {
        // 1. positional noise: every raider drifts a little
        for r in &raiders {
            if let Some(p) = world.pos(r.id) {
                let jitter = Vec2::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5) * 12.0;
                world.set_pos(r.id, p + jitter).unwrap();
            }
        }

        // 2. raiders act: dps hit the boss, healers top up the wounded
        for r in &raiders {
            if !world.is_live(r.id) {
                continue;
            }
            let power = world.get_f32(r.id, "dmg").unwrap_or(0.0);
            match r.role {
                Role::Healer => {
                    let worst = raiders
                        .iter()
                        .filter(|x| world.is_live(x.id))
                        .min_by(|a, b| {
                            let ha = world.get_f32(a.id, "hp").unwrap_or(0.0);
                            let hb = world.get_f32(b.id, "hp").unwrap_or(0.0);
                            ha.partial_cmp(&hb).expect("hp is never NaN")
                        });
                    if let Some(w) = worst {
                        let hp = world.get_f32(w.id, "hp").unwrap_or(0.0);
                        world.set_f32(w.id, "hp", hp + power * 0.6).unwrap();
                    }
                }
                _ => {
                    let hp = world.get_f32(boss, "hp").unwrap_or(0.0);
                    world.set_f32(boss, "hp", (hp - power).max(0.0)).unwrap();
                }
            }
            // threat stream: damage (and healing) generate role-weighted
            // threat; tanks taunt on cooldown
            policy.feed_damage(boss, r.id, r.role, power as f64);
            if r.role == Role::Tank && tick % TANK_TAUNT_EVERY == 0 {
                policy.feed_taunt(boss, r.id);
            }
        }
        policy.end_tick();

        // 3. the boss swings at its chosen target
        if let Some(target) = policy.choose(&world, boss, &candidates) {
            if last_target.is_some() && last_target != Some(target) {
                out.target_switches += 1;
            }
            last_target = Some(target);
            if raiders
                .iter()
                .any(|r| r.id == target && r.role == Role::Tank)
            {
                out.tank_target_ticks += 1;
            }
            let hp = world.get_f32(target, "hp").unwrap_or(0.0) - BOSS_DMG;
            if hp <= 0.0 {
                if raiders
                    .iter()
                    .any(|r| r.id == target && r.role == Role::Healer)
                {
                    out.healer_deaths += 1;
                }
                out.raid_deaths += 1;
                world.despawn(target);
            } else {
                world.set_f32(target, "hp", hp).unwrap();
            }
        }
    }
    out.boss_hp_left = world.get_f32(boss, "hp").unwrap_or(0.0);
    out
}

fn main() {
    println!("raid: 2 tanks, 2 healers, 6 dps vs one boss; {TICKS} ticks of noisy movement\n");
    println!(
        "{:<8} {:>15} {:>15} {:>14} {:>12} {:>13}",
        "policy", "target switches", "boss-on-tank %", "healer deaths", "raid deaths", "boss hp left"
    );
    let seed = 3;
    let near = run_fight(Policy::Nearest(NearestTargeting), seed);
    let agg = run_fight(Policy::Aggro(AggroTargeting::new(0.95)), seed);
    for (name, o) in [("nearest", &near), ("aggro", &agg)] {
        println!(
            "{:<8} {:>15} {:>14.0}% {:>14} {:>12} {:>13.0}",
            name,
            o.target_switches,
            o.tank_target_ticks as f32 / TICKS as f32 * 100.0,
            o.healer_deaths,
            o.raid_deaths,
            o.boss_hp_left,
        );
    }
    println!();
    assert!(
        agg.target_switches < near.target_switches,
        "aggro must be more stable than nearest targeting"
    );
    assert!(agg.tank_target_ticks > near.tank_target_ticks);
    println!(
        "aggro keeps the boss on the tank through positional noise — combat\n\
         resolves \"without exact spatial fidelity\", which is the paper's point."
    );
}
