//! User-generated content: a Second Life-style scripting sandbox.
//!
//! The paper: "Some games like Second Life go further and provide users
//! with a complete scripting language that they can use to create new
//! content. This type of user-generated content can greatly extend the
//! playable lifespan of a popular game." — and the same section explains
//! why studios then "remove support for iteration and recursion": one
//! griefer script that is Ω(n²) in the number of objects takes the region
//! server down for everyone.
//!
//! This example is the server side of that story: players submit scripts
//! for their in-world objects; the server
//!
//!   1. enforces the **restricted language level** at submission time
//!      (loops and recursion rejected with designer-readable errors),
//!   2. enforces a **per-player script quota**,
//!   3. runs everything through the optimizer + compiled path, and
//!   4. hot-reloads a script when its author edits it live.
//!
//! ```text
//! cargo run --example user_content
//! ```

use std::collections::HashMap;

use gamedb::content::ValueType;
use gamedb::core::World;
use gamedb::script::{EngineError, Level, ScriptEngine};
use gamedb::spatial::Vec2;

/// Per-player submission limits (a real grid also meters runtime).
const MAX_SCRIPTS_PER_PLAYER: usize = 2;

/// The region server's UGC gateway: quota + language-level enforcement
/// in front of the script engine.
struct UgcGateway {
    engine: ScriptEngine,
    owner_of: HashMap<String, String>,
}

impl UgcGateway {
    fn new() -> Self {
        UgcGateway {
            // Restricted level: no while, no recursion, no unbounded
            // foreach — aggregates only. The optimizer also runs, so even
            // accepted scripts get constant-folded before they tick.
            engine: ScriptEngine::new(Level::Restricted).with_optimizer(),
            owner_of: HashMap::new(),
        }
    }

    fn submit(
        &mut self,
        player: &str,
        script_name: &str,
        source: &str,
        world: &World,
    ) -> Result<(), String> {
        let owned = self
            .owner_of
            .iter()
            .filter(|(name, owner)| {
                owner.as_str() == player && name.as_str() != script_name
            })
            .count();
        if owned >= MAX_SCRIPTS_PER_PLAYER {
            return Err(format!(
                "{player} is at the {MAX_SCRIPTS_PER_PLAYER}-script quota"
            ));
        }
        match self.engine.load(script_name, source, world) {
            Ok(()) => {
                self.owner_of
                    .insert(script_name.to_string(), player.to_string());
                Ok(())
            }
            Err(EngineError::Check(errors)) => Err(errors
                .iter()
                .map(|e| format!("  rejected: {e}"))
                .collect::<Vec<_>>()
                .join("\n")),
            Err(other) => Err(format!("  rejected: {other}")),
        }
    }
}

fn main() {
    // The public plaza: a shared region with player-owned objects.
    let mut world = World::new();
    for (name, ty) in [
        ("glow", ValueType::Float),
        ("team", ValueType::Str),
        ("hp", ValueType::Float),
    ] {
        world.define_component(name, ty).unwrap();
    }
    let mut gateway = UgcGateway::new();
    gateway.engine.ensure_binding_component(&mut world);

    // Thirty ambient objects so neighborhood scripts have neighbors.
    for i in 0..30 {
        let e = world.spawn_at(Vec2::new((i % 6) as f32 * 3.0, (i / 6) as f32 * 3.0));
        world.set_f32(e, "glow", 1.0).unwrap();
    }

    println!("== player \"ada\" submits a fountain that glows with company ==");
    let fountain = world.spawn_at(Vec2::new(7.0, 7.0));
    world.set_f32(fountain, "glow", 0.0).unwrap();
    let result = gateway.submit(
        "ada",
        "fountain",
        // restricted-legal: neighborhood logic through aggregates
        "let crowd = count(6);\n self.glow = clamp(crowd * 0.5, 0, 5);",
        &world,
    );
    println!("   accepted: {}", result.is_ok());
    gateway.engine.bind(&mut world, fountain, "fountain").unwrap();

    println!("\n== player \"mallory\" submits the region-killer ==");
    let griefer_src = r#"
        foreach within (10000) {
          foreach within (10000) {
            self.glow += 0.000001;
          }
        }"#;
    match gateway.submit("mallory", "sparkle", griefer_src, &world) {
        Ok(()) => unreachable!("the restricted level must reject this"),
        Err(msg) => println!("{msg}"),
    }

    println!("\n== mallory resubmits the declarative version ==");
    let fixed = "self.glow += count(10000) * count(10000) * 0.000001;";
    let result = gateway.submit("mallory", "sparkle", fixed, &world);
    println!("   accepted: {}", result.is_ok());
    let disco = world.spawn_at(Vec2::new(8.0, 8.0));
    gateway.engine.bind(&mut world, disco, "sparkle").unwrap();

    println!("\n== quota: mallory's third script bounces ==");
    gateway
        .submit("mallory", "second", "self.glow += 0.1;", &world)
        .unwrap();
    match gateway.submit("mallory", "third", "self.glow += 0.1;", &world) {
        Ok(()) => unreachable!("quota must hold"),
        Err(msg) => println!("   {msg}"),
    }

    println!("\n== three region ticks ==");
    for tick in 1..=3 {
        let stats = gateway.engine.tick(&mut world).unwrap();
        println!(
            "   tick {tick}: {} scripts ran ({} compiled), fountain glow = {:.1}",
            stats.scripts_run,
            stats.compiled_runs,
            world.get_f32(fountain, "glow").unwrap(),
        );
    }
    assert!(world.get_f32(fountain, "glow").unwrap() > 0.0);

    println!("\n== ada live-edits her fountain (hot reload) ==");
    gateway
        .submit(
            "ada",
            "fountain",
            "self.glow = 99.0;",
            &world,
        )
        .unwrap();
    gateway.engine.tick(&mut world).unwrap();
    println!(
        "   fountain glow after reload: {:.0}",
        world.get_f32(fountain, "glow").unwrap()
    );
    assert_eq!(world.get_f32(fountain, "glow"), Some(99.0));

    println!(
        "\nthe sandbox held: quadratic griefing rejected at the language \
         level,\nquotas enforced, and accepted content ran compiled through \
         the spatial index."
    );
}
